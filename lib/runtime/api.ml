(* Convenience front end: MiniC source -> compile -> instrument -> run.

   This is the "Shasta compilation process" of Figure 1: the application
   executable (produced by the MiniC compiler standing in for the system
   C compiler) is rewritten with miss checks and linked against the
   runtime, then run on a simulated cluster. *)

open Shasta_minic

type spec = {
  prog : Ast.prog;
  opts : Shasta.Opts.t option; (* None = original, uninstrumented binary *)
  nprocs : int;
  pipe : Shasta_machine.Pipeline.config;
  net : Shasta_network.Network.profile;
  net_faults : Shasta_network.Network.faults option;
      (* None = the paper's reliable wire; Some f injects seeded
         drop/dup/reorder/delay under the reliable-delivery sublayer *)
  node_faults : Nodefaults.t option;
      (* None (or an event-free spec) = no crash injection; Some s
         halts/restarts nodes per the schedule with lease-based
         detection and directory reconstruction *)
  fixed_block : int option;
  granularity_threshold : int;
  consistency : State.consistency;
  obs : Shasta_obs.Obs.t option;
      (* observability subsystem to report into; [None] builds a fresh
         sinkless one (the metrics registry is still populated) *)
  progress : int option;
      (* Some n: heartbeat every n million simulated cycles (obs event
         + stderr line); None stays silent and byte-identical *)
  dir_mode : Shasta_protocol.Nodeset.mode;
      (* directory organization for the protocol's node sets; nprocs is
         validated against its capacity at prepare time *)
  home_policy : State.home_policy;
  placement : (int * int) list;
      (* explicit (page, home) overrides — the Profiled policy's input
         (see [run_profiled], which derives them from a pilot run) *)
  scalable_sync : bool; (* queue locks + combining-tree barrier *)
  migrate : bool; (* hot-page directory-home migration *)
}

let default_spec prog =
  { prog; opts = Some Shasta.Opts.full; nprocs = 1;
    pipe = Shasta_machine.Pipeline.alpha_21064a;
    net = Shasta_network.Network.memory_channel; net_faults = None;
    node_faults = None; fixed_block = None;
    granularity_threshold = 1024; consistency = State.Release; obs = None;
    progress = None; dir_mode = Shasta_protocol.Nodeset.Full;
    home_policy = State.Round_robin; placement = []; scalable_sync = false;
    migrate = false }

type result = {
  phase : Cluster.phase_result;
  inst_stats : Shasta.Instrument.stats option;
  program : Shasta_isa.Program.t; (* the executable actually run *)
  state : State.t; (* post-run cluster state (registry, network, protocol view) *)
}

let prepare spec =
  let compiled = Compile.compile spec.prog in
  let program, inst_stats =
    match spec.opts with
    | Some opts ->
      let p, s = Shasta.Instrument.instrument ~opts compiled.program in
      (p, Some s)
    | None ->
      if spec.nprocs > 1 then
        invalid_arg
          "Api.prepare: uninstrumented executables only run on one node";
      (compiled.program, None)
  in
  let line_shift =
    match spec.opts with Some o -> o.line_shift | None -> 6
  in
  let config =
    State.default_config ~nprocs:spec.nprocs ~line_shift
      ~consistency:spec.consistency ~pipe_config:spec.pipe
      ~net_profile:spec.net ?net_faults:spec.net_faults
      ?node_faults:spec.node_faults
      ~granularity_threshold:spec.granularity_threshold
      ?fixed_block:spec.fixed_block ?obs:spec.obs ?progress:spec.progress
      ~dir_mode:spec.dir_mode ~home_policy:spec.home_policy
      ~placement:spec.placement ~scalable_sync:spec.scalable_sync
      ~migrate:spec.migrate ()
  in
  let state =
    Cluster.create ~config ~compiled:{ compiled with program } ()
  in
  (state, inst_stats, program)

let run ?(init_proc = "appinit") ?(work_proc = "work") spec =
  let state, inst_stats, program = prepare spec in
  let phase = Cluster.run_app ~init_proc ~work_proc state in
  { phase; inst_stats; program; state }

(* Profile-guided placement: turn a pilot run's per-block contention
   tables into (page, home) overrides.  Each contended block votes for
   its writer nodes (readers when nobody wrote), weighted by its
   invalidation traffic; a page whose dominant node differs from the
   round-robin default gets an override. *)
let placement_of_profile prof ~nprocs =
  let page_bytes = 8192 in
  let nbits = min nprocs Shasta_protocol.Nodeset.max_bits in
  let tally = Hashtbl.create 64 in
  List.iter
    (fun (block, (bs : Shasta_obs.Profile.block_stats)) ->
      let page = block / page_bytes in
      let mask = if bs.writers <> 0 then bs.writers else bs.readers in
      let weight = 1 + bs.invals + bs.pingpong in
      for n = 0 to nbits - 1 do
        if mask land (1 lsl n) <> 0 then begin
          let votes =
            match Hashtbl.find_opt tally page with
            | Some a -> a
            | None ->
              let a = Array.make nprocs 0 in
              Hashtbl.add tally page a;
              a
          in
          votes.(n) <- votes.(n) + weight
        end
      done)
    (Shasta_obs.Profile.contended_blocks prof);
  Hashtbl.fold
    (fun page votes acc ->
      let best = ref 0 in
      Array.iteri (fun n w -> if w > votes.(!best) then best := n) votes;
      if votes.(!best) = 0 || !best = page mod nprocs then acc
      else (page, !best) :: acc)
    tally []
  |> List.sort compare

(* The Profiled home policy's two-pass driver: a pilot run with a
   profiler attached to a private obs discovers contention under
   round-robin homes, then the real run executes with the derived
   placement installed.  Returns the real result plus the placement. *)
let run_profiled ?(init_proc = "appinit") ?(work_proc = "work") spec =
  let pobs = Shasta_obs.Obs.create ~nprocs:spec.nprocs () in
  let prof = Shasta_obs.Profile.create ~nprocs:spec.nprocs () in
  Shasta_obs.Obs.attach_profiler pobs prof;
  let pilot =
    { spec with obs = Some pobs; home_policy = State.Round_robin;
      placement = []; migrate = false; progress = None }
  in
  ignore (run ~init_proc ~work_proc pilot);
  let placement = placement_of_profile prof ~nprocs:spec.nprocs in
  let real = { spec with home_policy = State.Profiled; placement } in
  (run ~init_proc ~work_proc real, placement)

(* [run] under host-side measurement: the whole pipeline inside one
   {!Shasta_obs.Perf} accumulator — "compile" covers MiniC compilation,
   instrumentation and cluster construction, "load"/"run"/"drain" are
   charged by [Cluster.run_app].  The report is folded into the result
   state's metrics registry (node-0 [perf.*] counters) and returned for
   BENCH emission. *)
let run_measured ?(init_proc = "appinit") ?(work_proc = "work") ?clock spec =
  let perf = Shasta_obs.Perf.create ?clock () in
  let state, inst_stats, program =
    Shasta_obs.Perf.phase perf "compile" (fun () -> prepare spec)
  in
  let phase = Cluster.run_app ~init_proc ~work_proc ~perf state in
  let report = Shasta_obs.Perf.report perf in
  Shasta_obs.Perf.publish (Shasta_obs.Obs.metrics (State.obs state)) report;
  ({ phase; inst_stats; program; state }, report)

(* Total inline-check misses of the timed phase — the [misses] field of
   a BENCH record. *)
let phase_misses (ph : Cluster.phase_result) =
  Array.fold_left
    (fun a (c : Node.counters) ->
      a + c.read_misses + c.write_misses + c.upgrade_misses)
    0 ph.counters

(* One BENCH record for a completed run.  Simulated fields come from
   the phase result; host fields from [perf] (omit it — or pass a
   zeroed report — for machine-independent baselines). *)
let bench_record ~workload ?(opts_name = "full") ?perf ?(extra = []) spec
    (r : result) =
  let line =
    match spec.fixed_block with
    | Some b -> b
    | None -> (
      match spec.opts with Some o -> 1 lsl o.Shasta.Opts.line_shift | None -> 64)
  in
  let wall_s, cyc_per_s, gc =
    match perf with
    | None -> (0.0, 0.0, Shasta_obs.Benchjson.no_gc)
    | Some (p : Shasta_obs.Perf.report) ->
      ( p.wall_s,
        Shasta_obs.Perf.cyc_per_s p ~sim_cycles:r.phase.wall_cycles,
        p.gc )
  in
  Shasta_obs.Benchjson.make ~workload ~nprocs:spec.nprocs ~line
    ~opts:opts_name ~sim_cycles:r.phase.wall_cycles
    ~messages:r.phase.msgs_sent ~misses:(phase_misses r.phase) ~wall_s
    ~cyc_per_s ~gc ~git_rev:(Shasta_obs.Perf.git_rev ()) ~extra ()
