(* Convenience front end: MiniC source -> compile -> instrument -> run.

   This is the "Shasta compilation process" of Figure 1: the application
   executable (produced by the MiniC compiler standing in for the system
   C compiler) is rewritten with miss checks and linked against the
   runtime, then run on a simulated cluster. *)

open Shasta_minic

type spec = {
  prog : Ast.prog;
  opts : Shasta.Opts.t option; (* None = original, uninstrumented binary *)
  nprocs : int;
  pipe : Shasta_machine.Pipeline.config;
  net : Shasta_network.Network.profile;
  net_faults : Shasta_network.Network.faults option;
      (* None = the paper's reliable wire; Some f injects seeded
         drop/dup/reorder/delay under the reliable-delivery sublayer *)
  node_faults : Nodefaults.t option;
      (* None (or an event-free spec) = no crash injection; Some s
         halts/restarts nodes per the schedule with lease-based
         detection and directory reconstruction *)
  fixed_block : int option;
  granularity_threshold : int;
  consistency : State.consistency;
  obs : Shasta_obs.Obs.t option;
      (* observability subsystem to report into; [None] builds a fresh
         sinkless one (the metrics registry is still populated) *)
}

let default_spec prog =
  { prog; opts = Some Shasta.Opts.full; nprocs = 1;
    pipe = Shasta_machine.Pipeline.alpha_21064a;
    net = Shasta_network.Network.memory_channel; net_faults = None;
    node_faults = None; fixed_block = None;
    granularity_threshold = 1024; consistency = State.Release; obs = None }

type result = {
  phase : Cluster.phase_result;
  inst_stats : Shasta.Instrument.stats option;
  program : Shasta_isa.Program.t; (* the executable actually run *)
  state : State.t; (* post-run cluster state (registry, network, protocol view) *)
}

let prepare spec =
  let compiled = Compile.compile spec.prog in
  let program, inst_stats =
    match spec.opts with
    | Some opts ->
      let p, s = Shasta.Instrument.instrument ~opts compiled.program in
      (p, Some s)
    | None ->
      if spec.nprocs > 1 then
        invalid_arg
          "Api.prepare: uninstrumented executables only run on one node";
      (compiled.program, None)
  in
  let line_shift =
    match spec.opts with Some o -> o.line_shift | None -> 6
  in
  let config =
    State.default_config ~nprocs:spec.nprocs ~line_shift
      ~consistency:spec.consistency ~pipe_config:spec.pipe
      ~net_profile:spec.net ?net_faults:spec.net_faults
      ?node_faults:spec.node_faults
      ~granularity_threshold:spec.granularity_threshold
      ?fixed_block:spec.fixed_block ?obs:spec.obs ()
  in
  let state =
    Cluster.create ~config ~compiled:{ compiled with program } ()
  in
  (state, inst_stats, program)

let run ?(init_proc = "appinit") ?(work_proc = "work") spec =
  let state, inst_stats, program = prepare spec in
  let phase = Cluster.run_app ~init_proc ~work_proc state in
  { phase; inst_stats; program; state }
