(* Combinators for authoring MiniC programs.

   The workloads in shasta_apps are written with these; they keep the
   sources close to the shape of the original SPLASH-2 C code (array
   indexing, parallel loop bounds, locks/barriers) without a parser. *)

open Ast

let i n = Int n
let f x = Flt x
let v x = Var x
let g x = Glob x

(* integer arithmetic *)
let ( +% ) a b = Bin (Add, a, b)
let ( -% ) a b = Bin (Sub, a, b)
let ( *% ) a b = Bin (Mul, a, b)
let ( /% ) a b = Bin (Div, a, b)
let ( %% ) a b = Bin (Rem, a, b)
let ( <<% ) a b = Bin (Shl, a, b)
let ( >>% ) a b = Bin (Shr, a, b)
let ( &% ) a b = Bin (Band, a, b)
let ( |% ) a b = Bin (Bor, a, b)
let ( ^% ) a b = Bin (Bxor, a, b)

(* integer comparisons *)
let ( ==% ) a b = Bin (Eq, a, b)
let ( <>% ) a b = Bin (Ne, a, b)
let ( <% ) a b = Bin (Lt, a, b)
let ( <=% ) a b = Bin (Le, a, b)
let ( >% ) a b = Bin (Gt, a, b)
let ( >=% ) a b = Bin (Ge, a, b)

(* float arithmetic and comparisons *)
let ( +. ) a b = Bin (Fadd, a, b)
let ( -. ) a b = Bin (Fsub, a, b)
let ( *. ) a b = Bin (Fmul, a, b)
let ( /. ) a b = Bin (Fdiv, a, b)
let ( ==. ) a b = Bin (Feq, a, b)
let ( <. ) a b = Bin (Flt, a, b)
let ( <=. ) a b = Bin (Fle, a, b)

let neg a = Un (Neg, a)
let not_ a = Un (Not, a)
let fneg a = Un (Fneg, a)
let fsqrt a = Un (Fsqrt, a)
let i2f a = Un (I2f, a)
let f2i a = Un (F2i, a)

let call name args = Call (name, args)
let now = Now

(* Element address of an 8-byte array slot: base + 8*index. *)
let elt base index = Bin (Add, base, Bin (Shl, index, Int 3))

(* Typed array accessors (8-byte elements). *)
let ldi base index = Load (I, elt base index, 0)
let ldf base index = Load (F, elt base index, 0)
let sti base index value = Store (I, elt base index, 0, value)
let stf base index value = Store (F, elt base index, 0, value)

(* Struct-style accessors: pointer plus byte offset. *)
let fld_i ptr off = Load (I, ptr, off)
let fld_f ptr off = Load (F, ptr, off)
let set_fld_i ptr off value = Store (I, ptr, off, value)
let set_fld_f ptr off value = Store (F, ptr, off, value)

(* statements *)
let let_i x e = Decl (x, I, e)
let let_f x e = Decl (x, F, e)
let set x e = Assign (x, e)
let gset x e = Gassign (x, e)
let if_ c t e = If (c, t, e)
let when_ c t = If (c, t, [])
let while_ c b = While (c, b)
let for_ x lo hi b = For (x, lo, hi, b)
let ret e = Return (Some e)
let ret_void = Return None
let expr e = Expr e
let lock e = Lock e
let unlock e = Unlock e
let barrier = Barrier
let flag_set e = Flag_set e
let flag_wait e = Flag_wait e
let print_int e = Print_int e
let print_flt e = Print_flt e

let proc name ?(params = []) ?ret body = { name; params; ret; body }

let prog ?(globals = []) procs = { globals; procs }
