(** Combinators for authoring MiniC programs: the workloads in
    [shasta_apps] are written with these, keeping sources close to the
    shape of the original SPLASH-2 C code. *)

open Ast

(** {1 Atoms} *)

val i : int -> expr
val f : float -> expr

val v : string -> expr
(** Local variable reference. *)

val g : string -> expr
(** Static global reference. *)

(** {1 Integer arithmetic and comparisons} *)

val ( +% ) : expr -> expr -> expr
val ( -% ) : expr -> expr -> expr
val ( *% ) : expr -> expr -> expr
val ( /% ) : expr -> expr -> expr
val ( %% ) : expr -> expr -> expr
val ( <<% ) : expr -> expr -> expr
val ( >>% ) : expr -> expr -> expr
val ( &% ) : expr -> expr -> expr
val ( |% ) : expr -> expr -> expr
val ( ^% ) : expr -> expr -> expr
val ( ==% ) : expr -> expr -> expr
val ( <>% ) : expr -> expr -> expr
val ( <% ) : expr -> expr -> expr
val ( <=% ) : expr -> expr -> expr
val ( >% ) : expr -> expr -> expr
val ( >=% ) : expr -> expr -> expr

(** {1 Floating point}

    These shadow the standard float operators within a builder scope. *)

val ( +. ) : expr -> expr -> expr
val ( -. ) : expr -> expr -> expr
val ( *. ) : expr -> expr -> expr
val ( /. ) : expr -> expr -> expr
val ( ==. ) : expr -> expr -> expr
val ( <. ) : expr -> expr -> expr
val ( <=. ) : expr -> expr -> expr

val neg : expr -> expr
val not_ : expr -> expr
val fneg : expr -> expr
val fsqrt : expr -> expr
val i2f : expr -> expr
val f2i : expr -> expr
val call : string -> expr list -> expr

val now : expr
(** The node's current cycle counter (simulated time). *)

(** {1 Memory access} *)

val elt : expr -> expr -> expr
(** Address of an 8-byte array element: base + 8*index. *)

val ldi : expr -> expr -> expr
val ldf : expr -> expr -> expr
val sti : expr -> expr -> expr -> stmt
val stf : expr -> expr -> expr -> stmt

val fld_i : expr -> int -> expr
(** Struct-style field read: pointer plus byte offset. *)

val fld_f : expr -> int -> expr
val set_fld_i : expr -> int -> expr -> stmt
val set_fld_f : expr -> int -> expr -> stmt

(** {1 Statements} *)

val let_i : string -> expr -> stmt
val let_f : string -> expr -> stmt
val set : string -> expr -> stmt
val gset : string -> expr -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val when_ : expr -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val for_ : string -> expr -> expr -> stmt list -> stmt
(** [for_ x lo hi body] iterates x from lo while x < hi. *)

val ret : expr -> stmt
val ret_void : stmt
val expr : expr -> stmt
val lock : expr -> stmt
val unlock : expr -> stmt
val barrier : stmt
val flag_set : expr -> stmt
val flag_wait : expr -> stmt
val print_int : expr -> stmt
val print_flt : expr -> stmt

(** {1 Programs} *)

val proc :
  string -> ?params:(string * ty) list -> ?ret:ty -> stmt list -> proc

val prog : ?globals:(string * ty) list -> proc list -> prog
