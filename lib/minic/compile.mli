(** MiniC code generator — the stand-in for the system C compiler whose
    output the Shasta instrumenter rewrites (paper Figure 1).

    Conventions match Section 2.3's expectations: locals and spills are
    SP-relative, globals and float constants GP-relative, and only
    pointer-based heap accesses use general base registers.  A small
    register cache keeps repeatedly-used locals (pointers especially) in
    one register across straight-line runs, which is what makes field
    access sequences batchable. *)

open Shasta_isa

exception Error of string

type proc_sig = { sig_params : Ast.ty list; sig_ret : Ast.ty option }

type compiled = {
  program : Program.t;
  global_addr : (string * int) list;
      (** absolute static addresses of globals, including the
          runtime-maintained [__pid] and [__nprocs] cells *)
  static_init : (int * int64) list;
      (** static-memory initialization (the float constant pool) *)
}

val spill_slots : int

val compile : Ast.prog -> compiled
(** Compile a program.  Raises {!Error} on undeclared names, arity or
    type mismatches, or temporary exhaustion. *)

val global_address : compiled -> string -> int

val global_address_opt : compiled -> string -> int option
(** Like {!global_address} but [None] for globals the program does not
    declare (used for opt-in cells like [__crashed]). *)
