(* MiniC: the small structured language the workloads are written in.

   MiniC stands in for the C the SPLASH-2 applications are written in:
   its compiler (Compile) produces the Alpha-like executables that the
   Shasta instrumenter rewrites, with the SPLASH memory model of the
   paper's Section 2 — dynamically allocated data is shared, static and
   stack data are private — expressed through the g_malloc / p_malloc
   intrinsics and GP/SP addressing. *)

type ty = I | F

type unop =
  | Neg (* integer negate *)
  | Not (* logical not: 1 if zero *)
  | Fneg
  | Fsqrt
  | I2f (* int -> double *)
  | F2i (* double -> int, truncating *)

type binop =
  (* integer *)
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr | Asr
  | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge
  | Ult (* unsigned < *)
  (* floating point *)
  | Fadd | Fsub | Fmul | Fdiv
  | Feq | Flt | Fle (* produce an integer 0/1 *)

type expr =
  | Int of int
  | Flt of float
  | Var of string (* local variable or parameter (stack slot) *)
  | Glob of string (* static global (GP-relative) *)
  | Load of ty * expr * int (* *(ty* )(base + byte_offset) *)
  | Un of unop * expr
  | Bin of binop * expr * expr
  | Call of string * expr list
  (* intrinsics *)
  | Gmalloc of expr (* shared allocation, heuristic block size *)
  | Gmalloc_b of expr * expr (* shared allocation with explicit block size *)
  | Pmalloc of expr (* private per-node allocation *)
  | Pid
  | Nprocs
  | Now (* the node's cycle counter (simulated time), cf. Alpha rpcc *)

type stmt =
  | Decl of string * ty * expr
  | Assign of string * expr
  | Gassign of string * expr
  | Store of ty * expr * int * expr (* *(base + off) = value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list (* for (v = lo; v < hi; v++) *)
  | Expr of expr
  | Return of expr option
  | Lock of expr
  | Unlock of expr
  | Barrier
  | Flag_set of expr
  | Flag_wait of expr
  | Print_int of expr
  | Print_flt of expr

type proc = {
  name : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
}

type prog = {
  globals : (string * ty) list;
  procs : proc list;
}
