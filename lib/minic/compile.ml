(* MiniC code generator.

   Produces executables with the conventions the Shasta instrumenter
   expects (Section 2.3 of the paper): locals and spills are SP-relative,
   globals and the float constant pool are GP-relative, and only
   pointer-based accesses to heap data use general base registers.
   Expression temporaries come from the caller-saved pool; values live
   across calls are spilled to the frame, which both keeps the code
   correct and gives the live-register analysis real work to do. *)

open Shasta_isa

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type proc_sig = { sig_params : Ast.ty list; sig_ret : Ast.ty option }

type compiled = {
  program : Program.t;
  (* absolute static addresses of globals, including the runtime-set
     __pid and __nprocs cells *)
  global_addr : (string * int) list;
  (* static memory initialization: (absolute address, quadword bits) *)
  static_init : (int * int64) list;
}

let spill_slots = 12

type genv = {
  gaddr : (string, int * Ast.ty) Hashtbl.t;
  sigs : (string, proc_sig) Hashtbl.t;
  fpool : (float, int) Hashtbl.t;
  mutable next_static : int;
  mutable init : (int * int64) list;
}

type penv = {
  g : genv;
  slots : (string, int * Ast.ty) Hashtbl.t;
  mutable itemps : Reg.ireg list;
  mutable ftemps : Reg.freg list;
  mutable nlabel : int;
  mutable nsrc : int; (* statement counter for source-location markers *)
  mutable code : Insn.t list; (* reversed *)
  frame : int;
  spill_base : int;
  mutable spill_depth : int;
  pname : string;
  pret : Ast.ty option;
  (* register cache for integer locals within straight-line statement
     runs: repeated uses of a pointer variable stay in one register, as
     a real compiler's allocator would keep them — this is what makes
     runs of accesses share a base register and thus be batchable
     (Section 3.4 of the paper).  Flushed at every control-flow
     boundary. *)
  mutable vcache : (string * Reg.ireg) list;
  mutable cache_on : bool;
}

let emit env i = env.code <- i :: env.code

let fresh_label env =
  env.nlabel <- env.nlabel + 1;
  Printf.sprintf "L%s_%d" env.pname env.nlabel

let alloc_i env =
  match env.itemps with
  | r :: rest ->
    env.itemps <- rest;
    r
  | [] -> err "%s: integer expression too deep (out of temporaries)" env.pname

let free_i env r =
  if Reg.is_int_temp r && not (List.exists (fun (_, c) -> c = r) env.vcache)
  then env.itemps <- r :: env.itemps

let cache_invalidate env x =
  match List.assoc_opt x env.vcache with
  | Some r ->
    env.vcache <- List.remove_assoc x env.vcache;
    free_i env r
  | None -> ()

let cache_flush env =
  let entries = env.vcache in
  env.vcache <- [];
  List.iter (fun (_, r) -> free_i env r) entries

let max_cached = 4

let alloc_f env =
  match env.ftemps with
  | r :: rest ->
    env.ftemps <- rest;
    r
  | [] -> err "%s: float expression too deep (out of temporaries)" env.pname

let free_f env r = if List.mem r Reg.float_temps then env.ftemps <- r :: env.ftemps

(* A register may be used as an in-place destination only if it is a
   plain temporary, not a cached variable. *)
let writable env r =
  Reg.is_int_temp r && not (List.exists (fun (_, c) -> c = r) env.vcache)

(* Destination for an operation consuming [ra]: reuse it when safe,
   otherwise allocate a fresh temporary. *)
let dest_for env ra = if writable env ra then ra else alloc_i env

let mov env rd rs = emit env (Opi (Or_, rd, Reg rs, Reg.zero))
let li env rd n = emit env (Lda (rd, n, Reg.zero))

let slot_of env x =
  match Hashtbl.find_opt env.slots x with
  | Some s -> s
  | None -> err "%s: undeclared variable %s" env.pname x

let global_of env x =
  match Hashtbl.find_opt env.g.gaddr x with
  | Some s -> s
  | None -> err "%s: undeclared global %s" env.pname x

let gp_off addr = addr - Shasta.Layout.static_base

let sig_of env name =
  match Hashtbl.find_opt env.g.sigs name with
  | Some s -> s
  | None -> err "%s: call to undefined procedure %s" env.pname name

(* --- typing -------------------------------------------------------- *)

let type_of env (e : Ast.expr) : Ast.ty =
  match e with
  | Int _ | Pid | Nprocs | Now | Gmalloc _ | Gmalloc_b _ | Pmalloc _ -> I
  | Flt _ -> F
  | Var x -> snd (slot_of env x)
  | Glob x -> snd (global_of env x)
  | Load (ty, _, _) -> ty
  | Un ((Neg | Not | F2i), _) -> I
  | Un ((Fneg | Fsqrt | I2f), _) -> F
  | Bin ((Fadd | Fsub | Fmul | Fdiv), _, _) -> F
  | Bin (_, _, _) -> I
  | Call (name, _) ->
    (match (sig_of env name).sig_ret with
     | Some t -> t
     | None -> err "%s: void call to %s used as a value" env.pname name)

(* --- float constant pool ------------------------------------------- *)

let float_const env c =
  let g = env.g in
  match Hashtbl.find_opt g.fpool c with
  | Some addr -> addr
  | None ->
    let addr = g.next_static in
    g.next_static <- g.next_static + 8;
    if g.next_static > Shasta.Layout.static_limit then
      err "static area overflow (float pool)";
    Hashtbl.add g.fpool c addr;
    g.init <- (addr, Int64.bits_of_float c) :: g.init;
    addr

(* --- expressions ---------------------------------------------------- *)

let iop_of_binop : Ast.binop -> Insn.iop option = function
  | Add -> Some Addq
  | Sub -> Some Subq
  | Mul -> Some Mulq
  | Div -> Some Divq
  | Rem -> Some Remq
  | Shl -> Some Sll
  | Shr -> Some Srl
  | Asr -> Some Sra
  | Band -> Some And_
  | Bor -> Some Or_
  | Bxor -> Some Xor_
  | Eq -> Some Cmpeq
  | Lt -> Some Cmplt
  | Le -> Some Cmple
  | Ult -> Some Cmpult
  | _ -> None

let fop_of_binop : Ast.binop -> Insn.fop option = function
  | Fadd -> Some Addt
  | Fsub -> Some Subt
  | Fmul -> Some Mult
  | Fdiv -> Some Divt
  | Feq -> Some Cmpteq
  | Flt -> Some Cmptlt
  | Fle -> Some Cmptle
  | _ -> None

let rec compile_i env (e : Ast.expr) : Reg.ireg =
  match e with
  | Int n ->
    let rd = alloc_i env in
    li env rd n;
    rd
  | Var x ->
    let off, ty = slot_of env x in
    if ty <> I then err "%s: %s is a float variable" env.pname x;
    (match List.assoc_opt x env.vcache with
     | Some r -> r
     | None ->
       let rd = alloc_i env in
       emit env (Ldq (rd, off, Reg.sp));
       if env.cache_on && List.length env.vcache < max_cached then
         env.vcache <- (x, rd) :: env.vcache;
       rd)
  | Glob x ->
    let addr, ty = global_of env x in
    if ty <> I then err "%s: global %s is a float" env.pname x;
    let rd = alloc_i env in
    emit env (Ldq (rd, gp_off addr, Reg.gp));
    rd
  | Pid -> compile_i env (Glob "__pid")
  | Nprocs -> compile_i env (Glob "__nprocs")
  | Now ->
    let rd = alloc_i env in
    emit env (Rt_call (Rdcycle rd));
    rd
  | Load (I, base, off) ->
    let rb = compile_i env base in
    let rd = alloc_i env in
    emit env (Ldq (rd, off, rb));
    free_i env rb;
    rd
  | Load (F, _, _) -> err "%s: float load in integer context" env.pname
  | Un (Neg, a) ->
    let ra = compile_i env a in
    let rd = dest_for env ra in
    emit env (Opi (Subq, rd, Reg ra, Reg.zero));
    if rd <> ra then free_i env ra;
    rd
  | Un (Not, a) ->
    let ra = compile_i env a in
    let rd = dest_for env ra in
    emit env (Opi (Cmpeq, rd, Imm 0, ra));
    if rd <> ra then free_i env ra;
    rd
  | Un (F2i, a) ->
    let fa = compile_f env a in
    let rd = alloc_i env in
    emit env (Cvttq (fa, rd));
    free_f env fa;
    rd
  | Un ((Fneg | Fsqrt | I2f), _) -> err "%s: float unop in integer context" env.pname
  | Bin ((Feq | Flt | Fle) as op, a, b) ->
    let fa = compile_f env a in
    let fb = compile_f env b in
    let fd = alloc_f env in
    emit env (Opf (Option.get (fop_of_binop op), fd, fa, fb));
    free_f env fa;
    free_f env fb;
    let rd = alloc_i env in
    emit env (Cvttq (fd, rd));
    free_f env fd;
    rd
  | Bin (Ne, a, b) ->
    let ra = compile_i env a in
    let rb = compile_i env b in
    let rd = dest_for env ra in
    emit env (Opi (Cmpeq, rd, Reg rb, ra));
    emit env (Opi (Cmpeq, rd, Imm 0, rd));
    if rd <> ra then free_i env ra;
    free_i env rb;
    rd
  | Bin (Gt, a, b) -> compile_i env (Bin (Lt, b, a))
  | Bin (Ge, a, b) -> compile_i env (Bin (Le, b, a))
  | Bin (op, a, b) ->
    (match iop_of_binop op with
     | Some iop ->
       let ra = compile_i env a in
       (* constant right operands become immediates *)
       (match b with
        | Int n when n >= 0 && n < 256 ->
          let rd = dest_for env ra in
          emit env (Opi (iop, rd, Imm n, ra));
          if rd <> ra then free_i env ra;
          rd
        | _ ->
          let rb = compile_i env b in
          let rd = dest_for env ra in
          emit env (Opi (iop, rd, Reg rb, ra));
          if rd <> ra then free_i env ra;
          free_i env rb;
          rd)
     | None -> err "%s: float binop in integer context" env.pname)
  | Call (name, args) ->
    (match compile_call env name args with
     | Some (`I r) -> r
     | Some (`F _) -> err "%s: float call %s in int context" env.pname name
     | None -> err "%s: void call %s used as value" env.pname name)
  | Gmalloc size -> compile_malloc env ~size ~bsize:None
  | Gmalloc_b (size, bsize) -> compile_malloc env ~size ~bsize:(Some bsize)
  | Pmalloc size ->
    let rs = compile_i env size in
    let rd = alloc_i env in
    emit env (Rt_call (Malloc_priv { size = rs; dest = rd }));
    free_i env rs;
    rd
  | Flt _ -> err "%s: float literal in integer context" env.pname

and compile_malloc env ~size ~bsize =
  let rs = compile_i env size in
  let rb = match bsize with Some b -> compile_i env b | None -> Reg.zero in
  let rd = alloc_i env in
  emit env (Rt_call (Malloc { size = rs; bsize = rb; dest = rd }));
  free_i env rs;
  if rb <> Reg.zero then free_i env rb;
  rd

and compile_f env (e : Ast.expr) : Reg.freg =
  match e with
  | Flt c ->
    let addr = float_const env c in
    let fd = alloc_f env in
    emit env (Ldt (fd, gp_off addr, Reg.gp));
    fd
  | Var x ->
    let off, ty = slot_of env x in
    if ty <> F then err "%s: %s is an int variable" env.pname x;
    let fd = alloc_f env in
    emit env (Ldt (fd, off, Reg.sp));
    fd
  | Glob x ->
    let addr, ty = global_of env x in
    if ty <> F then err "%s: global %s is an int" env.pname x;
    let fd = alloc_f env in
    emit env (Ldt (fd, gp_off addr, Reg.gp));
    fd
  | Load (F, base, off) ->
    let rb = compile_i env base in
    let fd = alloc_f env in
    emit env (Ldt (fd, off, rb));
    free_i env rb;
    fd
  | Un (Fneg, a) ->
    let fa = compile_f env a in
    let fd = alloc_f env in
    emit env (Opf (Subt, fd, Reg.fzero, fa));
    free_f env fa;
    fd
  | Un (Fsqrt, a) ->
    let fa = compile_f env a in
    let fd = alloc_f env in
    emit env (Opf (Sqrtt, fd, fa, Reg.fzero));
    free_f env fa;
    fd
  | Un (I2f, a) ->
    let ra = compile_i env a in
    let fd = alloc_f env in
    emit env (Cvtqt (ra, fd));
    free_i env ra;
    fd
  | Bin ((Fadd | Fsub | Fmul | Fdiv) as op, a, b) ->
    let fa = compile_f env a in
    let fb = compile_f env b in
    emit env (Opf (Option.get (fop_of_binop op), fa, fa, fb));
    free_f env fb;
    fa
  | Call (name, args) ->
    (match compile_call env name args with
     | Some (`F f) -> f
     | _ -> err "%s: %s is not a float call" env.pname name)
  | _ -> err "%s: integer expression in float context" env.pname

(* Calls: spill live temporaries to the frame's spill area, evaluate
   arguments, move them to the argument registers, call, restore. *)
and compile_call env name args =
  let s = sig_of env name in
  if List.length args <> List.length s.sig_params then
    err "%s: %s expects %d arguments" env.pname name (List.length s.sig_params);
  let active_i =
    List.filter (fun r -> not (List.mem r env.itemps)) Reg.int_temps
  in
  let active_f =
    List.filter (fun r -> not (List.mem r env.ftemps)) Reg.float_temps
  in
  let saved_itemps = env.itemps and saved_ftemps = env.ftemps in
  let saved_depth = env.spill_depth in
  let spill emit_insn r =
    let off = env.spill_base + (8 * env.spill_depth) in
    env.spill_depth <- env.spill_depth + 1;
    if env.spill_depth > spill_slots then
      err "%s: call spill area exhausted" env.pname;
    emit env (emit_insn r off);
    (r, off)
  in
  let spilled_i = List.map (spill (fun r off -> Insn.Stq (r, off, Reg.sp))) active_i in
  let spilled_f = List.map (spill (fun r off -> Insn.Stt (r, off, Reg.sp))) active_f in
  (* spilled registers become available for argument evaluation —
     except registers the cache maps to variables: the cache may still
     be read while evaluating arguments, so those must keep their
     values until the call itself *)
  let uncached =
    List.filter
      (fun r -> not (List.exists (fun (_, c) -> c = r) env.vcache))
      active_i
  in
  env.itemps <- uncached @ saved_itemps;
  env.ftemps <- active_f @ saved_ftemps;
  if List.length args > 6 then err "%s: more than 6 arguments to %s" env.pname name;
  (* no register caching while evaluating arguments: entries created
     here would not be covered by the spill above and the callee
     clobbers the temporaries *)
  let old_cache = env.cache_on in
  env.cache_on <- false;
  let evaluated =
    List.map2
      (fun (ty : Ast.ty) a ->
        match ty with
        | I -> `I (compile_i env a)
        | F -> `F (compile_f env a))
      s.sig_params args
  in
  env.cache_on <- old_cache;
  List.iteri
    (fun j v ->
      match v with
      | `I r -> mov env (Reg.arg j) r
      | `F f -> emit env (Fmov (Reg.farg j, f)))
    evaluated;
  List.iter (function `I r -> free_i env r | `F f -> free_f env f) evaluated;
  emit env (Jsr name);
  (* restore spilled temporaries *)
  List.iter (fun (r, off) -> emit env (Insn.Ldq (r, off, Reg.sp))) spilled_i;
  List.iter (fun (r, off) -> emit env (Insn.Ldt (r, off, Reg.sp))) spilled_f;
  env.itemps <- saved_itemps;
  env.ftemps <- saved_ftemps;
  env.spill_depth <- saved_depth;
  match s.sig_ret with
  | None -> None
  | Some I ->
    let rd = alloc_i env in
    mov env rd Reg.rv;
    Some (`I rd)
  | Some F ->
    let fd = alloc_f env in
    emit env (Fmov (fd, Reg.frv));
    Some (`F fd)

(* Branch to [lab] when [cond] is false. *)
let compile_branch_false env (cond : Ast.expr) lab =
  match cond with
  | Bin ((Feq | Flt | Fle) as op, a, b) ->
    let fa = compile_f env a in
    let fb = compile_f env b in
    let fd = alloc_f env in
    emit env (Opf (Option.get (fop_of_binop op), fd, fa, fb));
    emit env (Fbeq (fd, lab));
    free_f env fa;
    free_f env fb;
    free_f env fd
  | Bin (Ne, a, b) ->
    let ra = compile_i env a in
    let rb = compile_i env b in
    emit env (Opi (Cmpeq, ra, Reg rb, ra));
    emit env (Bc (Ne, ra, lab));
    free_i env ra;
    free_i env rb
  | _ ->
    let r = compile_i env cond in
    emit env (Bc (Eq, r, lab));
    free_i env r

let epilogue env =
  emit env (Lda (Reg.sp, env.frame, Reg.sp));
  emit env Insn.Ret

let compile_slot_assign env ~x ~off ~(ty : Ast.ty) e =
  match ty with
  | I ->
    let r = compile_i env e in
    cache_invalidate env x;
    emit env (Stq (r, off, Reg.sp));
    free_i env r
  | F ->
    let f = compile_f env e in
    emit env (Stt (f, off, Reg.sp));
    free_f env f

let with_cache_off env f =
  let on = env.cache_on in
  env.cache_on <- false;
  let r = f () in
  env.cache_on <- on;
  r

let rec compile_stmt env (s : Ast.stmt) =
  (* a zero-byte source-location marker in front of every statement
     (nested ones included): the Shasta instrumenter carries labels
     through unchanged, so the frozen image can attribute each rewritten
     instruction — and every miss at it — back to a statement *)
  env.nsrc <- env.nsrc + 1;
  emit env (Lab (Program.src_marker ~pname:env.pname env.nsrc));
  match s with
  | Decl (x, ty, e) ->
    let off, sty = slot_of env x in
    if sty <> ty then err "%s: type mismatch declaring %s" env.pname x;
    compile_slot_assign env ~x ~off ~ty e
  | Assign (x, e) ->
    let off, ty = slot_of env x in
    compile_slot_assign env ~x ~off ~ty e
  | Gassign (x, e) ->
    let addr, ty = global_of env x in
    (match ty with
     | I ->
       let r = compile_i env e in
       emit env (Stq (r, gp_off addr, Reg.gp));
       free_i env r
     | F ->
       let f = compile_f env e in
       emit env (Stt (f, gp_off addr, Reg.gp));
       free_f env f)
  | Store (ty, base, off, v) ->
    let rb = compile_i env base in
    (match ty with
     | I ->
       let rv = compile_i env v in
       emit env (Stq (rv, off, rb));
       free_i env rv
     | F ->
       let fv = compile_f env v in
       emit env (Stt (fv, off, rb));
       free_f env fv);
    free_i env rb
  | If (c, s1, []) ->
    cache_flush env;
    let lend = fresh_label env in
    with_cache_off env (fun () -> compile_branch_false env c lend);
    List.iter (compile_stmt env) s1;
    cache_flush env;
    emit env (Lab lend)
  | If (c, s1, s2) ->
    cache_flush env;
    let lelse = fresh_label env and lend = fresh_label env in
    with_cache_off env (fun () -> compile_branch_false env c lelse);
    List.iter (compile_stmt env) s1;
    cache_flush env;
    emit env (Br lend);
    emit env (Lab lelse);
    List.iter (compile_stmt env) s2;
    cache_flush env;
    emit env (Lab lend)
  | While (c, body) ->
    cache_flush env;
    let lhead = fresh_label env and lend = fresh_label env in
    emit env (Lab lhead);
    with_cache_off env (fun () -> compile_branch_false env c lend);
    List.iter (compile_stmt env) body;
    cache_flush env;
    emit env (Br lhead);
    emit env (Lab lend)
  | For (x, lo, hi, body) ->
    cache_flush env;
    let off, ty = slot_of env x in
    if ty <> I then err "%s: loop variable %s must be int" env.pname x;
    with_cache_off env (fun () ->
      let r = compile_i env lo in
      emit env (Stq (r, off, Reg.sp));
      free_i env r);
    cache_flush env;
    let lhead = fresh_label env and lend = fresh_label env in
    emit env (Lab lhead);
    with_cache_off env (fun () ->
      let rv = compile_i env (Var x) in
      let rh = compile_i env hi in
      emit env (Opi (Cmplt, rv, Reg rh, rv));
      emit env (Bc (Eq, rv, lend));
      free_i env rv;
      free_i env rh);
    List.iter (compile_stmt env) body;
    cache_flush env;
    with_cache_off env (fun () ->
      let rv = compile_i env (Var x) in
      emit env (Opi (Addq, rv, Imm 1, rv));
      emit env (Stq (rv, off, Reg.sp));
      free_i env rv);
    emit env (Br lhead);
    emit env (Lab lend)
  | Expr (Call (name, args)) when (sig_of env name).sig_ret = None ->
    ignore (compile_call env name args)
  | Expr e ->
    (match type_of env e with
     | I -> free_i env (compile_i env e)
     | F -> free_f env (compile_f env e))
  | Return None ->
    if env.pret <> None then err "%s: missing return value" env.pname;
    epilogue env
  | Return (Some e) ->
    (match env.pret with
     | Some I ->
       let r = compile_i env e in
       mov env Reg.rv r;
       free_i env r
     | Some F ->
       let f = compile_f env e in
       emit env (Fmov (Reg.frv, f));
       free_f env f
     | None -> err "%s: return value in void procedure" env.pname);
    epilogue env
  | Lock e ->
    let r = compile_i env e in
    emit env (Rt_call (Lock r));
    free_i env r
  | Unlock e ->
    let r = compile_i env e in
    emit env (Rt_call (Unlock r));
    free_i env r
  | Barrier -> emit env (Rt_call Barrier)
  | Flag_set e ->
    let r = compile_i env e in
    emit env (Rt_call (Flag_set r));
    free_i env r
  | Flag_wait e ->
    let r = compile_i env e in
    emit env (Rt_call (Flag_wait r));
    free_i env r
  | Print_int e ->
    let r = compile_i env e in
    emit env (Rt_call (Print_int r));
    free_i env r
  | Print_flt e ->
    let f = compile_f env e in
    emit env (Rt_call (Print_float f));
    free_f env f

(* Count and pre-assign stack slots for all declarations. *)
let rec collect_decls slots next stmts =
  List.fold_left
    (fun next (s : Ast.stmt) ->
      match s with
      | Decl (x, ty, _) ->
        if Hashtbl.mem slots x then next
        else begin
          Hashtbl.add slots x (next * 8, ty);
          next + 1
        end
      | For (x, _, _, body) ->
        let next =
          if Hashtbl.mem slots x then next
          else begin
            Hashtbl.add slots x (next * 8, (Ast.I : Ast.ty));
            next + 1
          end
        in
        collect_decls slots next body
      | If (_, a, b) -> collect_decls slots (collect_decls slots next a) b
      | While (_, body) -> collect_decls slots next body
      | _ -> next)
    next stmts

let compile_proc g (p : Ast.proc) : Program.proc =
  let slots = Hashtbl.create 16 in
  let next =
    List.fold_left
      (fun next (x, ty) ->
        if Hashtbl.mem slots x then err "%s: duplicate parameter %s" p.name x;
        Hashtbl.add slots x (next * 8, ty);
        next + 1)
      0 p.params
  in
  let nslots = collect_decls slots next p.body in
  let frame = (((nslots + spill_slots) * 8) + 15) land lnot 15 in
  let env =
    { g; slots; itemps = Reg.int_temps; ftemps = Reg.float_temps; nlabel = 0;
      nsrc = 0; code = []; frame; spill_base = nslots * 8; spill_depth = 0;
      pname = p.name; pret = p.ret; vcache = []; cache_on = true }
  in
  emit env (Lda (Reg.sp, -frame, Reg.sp));
  List.iteri
    (fun j (x, (ty : Ast.ty)) ->
      let off, _ = slot_of env x in
      match ty with
      | I -> emit env (Stq (Reg.arg j, off, Reg.sp))
      | F -> emit env (Stt (Reg.farg j, off, Reg.sp)))
    p.params;
  List.iter (compile_stmt env) p.body;
  epilogue env;
  { Program.pname = p.name; body = List.rev env.code }

let builtin_globals = [ ("__pid", Ast.I); ("__nprocs", Ast.I) ]

let compile (prog : Ast.prog) : compiled =
  let g =
    { gaddr = Hashtbl.create 16; sigs = Hashtbl.create 16;
      fpool = Hashtbl.create 16;
      next_static = Shasta.Layout.static_base; init = [] }
  in
  List.iter
    (fun (x, ty) ->
      if Hashtbl.mem g.gaddr x then err "duplicate global %s" x;
      Hashtbl.add g.gaddr x (g.next_static, ty);
      g.next_static <- g.next_static + 8)
    (builtin_globals @ prog.globals);
  List.iter
    (fun (p : Ast.proc) ->
      if Hashtbl.mem g.sigs p.name then err "duplicate procedure %s" p.name;
      Hashtbl.add g.sigs p.name
        { sig_params = List.map snd p.params; sig_ret = p.ret })
    prog.procs;
  let entry =
    match prog.procs with
    | [] -> err "program has no procedures"
    | p :: _ -> if Hashtbl.mem g.sigs "main" then "main" else p.name
  in
  let procs = List.map (compile_proc g) prog.procs in
  let program = Program.validate { Program.procs; entry } in
  let global_addr =
    Hashtbl.fold (fun x (addr, _) l -> (x, addr) :: l) g.gaddr []
  in
  { program; global_addr; static_init = g.init }

let global_address compiled name =
  match List.assoc_opt name compiled.global_addr with
  | Some a -> a
  | None -> err "unknown global %s" name

let global_address_opt compiled name =
  List.assoc_opt name compiled.global_addr
