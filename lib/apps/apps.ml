(* Workload registry with size presets.

   Test sizes keep simulation time down in unit tests; Small is the
   default for the Table 2 / parallel measurements; Large scales the
   problems up for longer runs. *)

type size = Test | Small | Large

type entry = {
  name : string;
  descr : string;
  make : size -> Shasta_minic.Ast.prog;
}

(* The sht Test preset runs in disjoint mode (each node owns its slice
   of the key space) so that its final table contents are checkable
   against the [Sht.shadow] oracle at any node count; the preset pieces
   are exposed so tests can call the oracle with the same spec. *)
let sht_test_cfg = { Sht.nbuckets = 128; slots = 8; handoff = 8 }

let sht_test_wl =
  Shasta_workload.Workload.spec ~nkeys:256 ~ops:2000 ~quanta:256
    ~disjoint:true ()

let all =
  [ { name = "lu";
      descr = "blocked dense LU factorization (contiguous blocks)";
      make =
        (function
         | Test -> Lu.program ~n:16 ~bs:4 ()
         | Small -> Lu.program ~n:48 ~bs:8 ()
         | Large -> Lu.program ~n:96 ~bs:8 ()) };
    { name = "fft";
      descr = "radix-2 complex FFT with bit-reversal and twiddle table";
      make =
        (function
         | Test -> Fft.program ~n:64 ()
         | Small -> Fft.program ~n:512 ()
         | Large -> Fft.program ~n:8192 ()) };
    { name = "radix";
      descr = "parallel radix sort (poor spatial locality)";
      make =
        (function
         | Test -> Radix.program ~nkeys:512 ()
         | Small -> Radix.program ~nkeys:4096 ()
         | Large -> Radix.program ~nkeys:65536 ()) };
    { name = "ocean";
      descr = "Jacobi relaxation on a 2D grid (row partitions)";
      make =
        (function
         | Test -> Ocean.program ~n:18 ~iters:2 ()
         | Small -> Ocean.program ~n:66 ~iters:4 ()
         | Large -> Ocean.program ~n:258 ~iters:4 ()) };
    { name = "water";
      descr = "O(n^2) molecular dynamics (record sharing)";
      make =
        (function
         | Test -> Water.program ~nmol:32 ~steps:1 ()
         | Small -> Water.program ~nmol:96 ~steps:2 ()
         | Large -> Water.program ~nmol:216 ~steps:3 ()) };
    { name = "barnes";
      descr = "grid-tree N-body with linked cell lists";
      make =
        (function
         | Test -> Barnes.program ~nparts:64 ~cdim:2 ()
         | Small -> Barnes.program ~nparts:256 ~cdim:4 ()
         | Large -> Barnes.program ~nparts:768 ~cdim:4 ()) };
    { name = "raytrace";
      descr = "sphere ray caster (branchy inner loops)";
      make =
        (function
         | Test -> Raytrace.program ~width:12 ~height:12 ~nspheres:8 ()
         | Small -> Raytrace.program ~width:32 ~height:32 ~nspheres:16 ()
         | Large -> Raytrace.program ~width:64 ~height:64 ~nspheres:32 ()) };
    { name = "volrend";
      descr = "volume ray casting with early termination";
      make =
        (function
         | Test -> Volrend.program ~vol:8 ~img:12 ()
         | Small -> Volrend.program ~vol:16 ~img:32 ()
         | Large -> Volrend.program ~vol:24 ~img:64 ()) };
    { name = "em3d";
      descr = "bipartite-graph wave propagation (fine-grain irregular)";
      make =
        (function
         | Test -> Em3d.program ~nnodes:64 ~degree:3 ~iters:2 ()
         | Small -> Em3d.program ~nnodes:256 ~degree:4 ~iters:3 ()
         | Large -> Em3d.program ~nnodes:1024 ~degree:5 ~iters:4 ()) };
    { name = "sht";
      descr = "sharded hash-table KV service under a YCSB-style mix";
      make =
        (let wl nkeys ops quanta =
           Shasta_workload.Workload.spec ~nkeys ~ops ~quanta ()
         in
         function
         | Test ->
           Sht.program ~cfg:sht_test_cfg ~wl:sht_test_wl ()
         | Small ->
           Sht.program
             ~cfg:{ Sht.nbuckets = 512; slots = 8; handoff = 8 }
             ~wl:(wl 1024 20000 1024) ()
         | Large ->
           Sht.program
             ~cfg:{ Sht.nbuckets = 2048; slots = 8; handoff = 8 }
             ~wl:(wl 4096 200000 1024) ()) };
    { name = "radiosity";
      descr = "task-queue energy redistribution with locks";
      make =
        (function
         | Test -> Radiosity.program ~npatches:16 ()
         | Small -> Radiosity.program ~npatches:48 ()
         | Large -> Radiosity.program ~npatches:96 ()) }
  ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> invalid_arg ("Apps.find: unknown application " ^ name)

let names = List.map (fun e -> e.name) all
