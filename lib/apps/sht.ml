(* SHT: a sharded, node-partitioned hash-table key-value service kept
   entirely in DSM global memory — the IronFleet/YCSB-style serving
   workload, as opposed to the SPLASH scientific kernels.

   The table is an array of fixed-size buckets (a power-of-two number
   of 16-byte slots, so one bucket is exactly one coherence block at
   the allocation's block size).  Every operation takes the bucket's
   lock, runs as a local atomic step, and unlocks — so a get/put/
   delete is a tiny lock-protected critical section whose data moves
   between nodes migratory-style, and a scan is a multi-bucket
   transaction over consecutive buckets acquired in ascending order.

   A bucket-ownership directory implements the shard-handoff path:
   buckets start node-partitioned ([owner = b mod nprocs]); each
   foreign access under the lock bumps a per-bucket counter, and when
   it reaches the handoff threshold the bucket's ownership migrates to
   the traffic source.  The data movement itself is the DSM protocol's
   job — the directory is the service-level bookkeeping that the
   report surfaces (handoff count, final ownership spread).

   Correctness is self-checking: put(k) installs value = ver*nkeys+k
   and records ver in a version table under the same lock, so get and
   scan can verify "every read sees the last write" in-line and count
   violations; the driver's report must show zero. *)

open Shasta_minic.Builder
open Shasta_minic.Ast
module Workload = Shasta_workload.Workload

type cfg = {
  nbuckets : int; (* power of two *)
  slots : int; (* per bucket, power of two *)
  handoff : int; (* foreign accesses before ownership migrates *)
}

let default_cfg ~nkeys =
  let rec pow2 v n = if v >= n then v else pow2 (v * 2) n in
  { nbuckets = pow2 64 (nkeys / 2); slots = 8; handoff = 8 }

(* Multiplicative hash, mirrored exactly by [bucket_of_key]. *)
let hash_mult = 0x2545F4914F6CDD1D

let bucket_of_key cfg key = (key * hash_mult) lsr 20 land (cfg.nbuckets - 1)

let max_bucket_load cfg ~nkeys =
  let load = Array.make cfg.nbuckets 0 in
  for k = 0 to nkeys - 1 do
    let b = bucket_of_key cfg k in
    load.(b) <- load.(b) + 1
  done;
  Array.fold_left max 0 load

let lock_base = 1000

let table cfg ~(wl : Workload.spec) =
  let nkeys = wl.Workload.nkeys in
  let bshift =
    (* log2 of the bucket's byte size; one slot is 16 bytes *)
    let rec lg n = if n <= 1 then 0 else 1 + lg (n / 2) in
    4 + lg cfg.slots
  in
  let bucket_bytes = cfg.slots * 16 in
  if bucket_bytes land (bucket_bytes - 1) <> 0 then
    invalid_arg "Sht.table: slots must be a power of two";
  if cfg.nbuckets land (cfg.nbuckets - 1) <> 0 then
    invalid_arg "Sht.table: nbuckets must be a power of two";
  if wl.Workload.scan_len > cfg.nbuckets then
    invalid_arg "Sht.table: scan_len exceeds nbuckets";
  let hash key = (key *% i hash_mult) >>% i 20 &% i (cfg.nbuckets - 1) in
  let slot bp j = v bp +% (v j <<% i 4) in
  (* under the bucket lock: count foreign accesses, migrate ownership
     to the requester once they hit the threshold *)
  let handoff_stmts =
    [ when_ (ldi (g "sht_dir") (v "b" *% i 2) <>% Pid)
        [ let_i "hc" (ldi (g "sht_dir") ((v "b" *% i 2) +% i 1) +% i 1);
          if_ (v "hc" >=% i cfg.handoff)
            [ sti (g "sht_dir") (v "b" *% i 2) Pid;
              sti (g "sht_dir") ((v "b" *% i 2) +% i 1) (i 0);
              let_i "sp0" (g "sht_stats" +% (Pid <<% i 8));
              set_fld_i (v "sp0") 8 (fld_i (v "sp0") 8 +% i 1)
            ]
            [ sti (g "sht_dir") ((v "b" *% i 2) +% i 1) (v "hc") ]
        ]
    ]
  in
  let p_get =
    proc "sht_get" ~params:[ ("key", I) ] ~ret:I
      ([ let_i "b" (hash (v "key"));
         lock (i lock_base +% v "b")
       ]
       @ handoff_stmts
       @ [ let_i "bp" (g "sht_ht" +% (v "b" <<% i bshift));
           let_i "r" (i 0);
           for_ "j" (i 0) (i cfg.slots)
             [ when_ (fld_i (slot "bp" "j") 0 ==% (v "key" +% i 1))
                 [ set "r" (fld_i (slot "bp" "j") 8 +% i 1) ]
             ];
           let_i "ver" (ldi (g "sht_vtab") (v "key"));
           if_ (v "r" ==% i 0)
             [ when_ (v "ver" <>% i 0) [ set "r" (i (-1)) ] ]
             [ when_
                 ((v "r" -% i 1) <>% ((v "ver" *% i nkeys) +% v "key"))
                 [ set "r" (i (-1)) ]
             ];
           unlock (i lock_base +% v "b");
           ret (v "r")
         ])
  in
  let p_put =
    proc "sht_put" ~params:[ ("key", I) ] ~ret:I
      ([ let_i "b" (hash (v "key"));
         lock (i lock_base +% v "b")
       ]
       @ handoff_stmts
       @ [ let_i "bp" (g "sht_ht" +% (v "b" <<% i bshift));
           let_i "s" (i (-1));
           let_i "e" (i (-1));
           for_ "j" (i 0) (i cfg.slots)
             [ let_i "tg" (fld_i (slot "bp" "j") 0);
               when_ (v "tg" ==% (v "key" +% i 1)) [ set "s" (v "j") ];
               when_ ((v "tg" ==% i 0) &% (v "e" <% i 0))
                 [ set "e" (v "j") ]
             ];
           let_i "r" (i 0);
           if_ (v "s" >=% i 0)
             [ let_i "ver" (ldi (g "sht_vtab") (v "key") +% i 1);
               set_fld_i (slot "bp" "s") 8
                 ((v "ver" *% i nkeys) +% v "key");
               sti (g "sht_vtab") (v "key") (v "ver")
             ]
             [ if_ (v "e" >=% i 0)
                 [ let_i "ver" (ldi (g "sht_vtab") (v "key") +% i 1);
                   set_fld_i (slot "bp" "e") 0 (v "key" +% i 1);
                   set_fld_i (slot "bp" "e") 8
                     ((v "ver" *% i nkeys) +% v "key");
                   sti (g "sht_vtab") (v "key") (v "ver")
                 ]
                 [ let_i "sp0" (g "sht_stats" +% (Pid <<% i 8));
                   set_fld_i (v "sp0") 0 (fld_i (v "sp0") 0 +% i 1);
                   set "r" (i 1)
                 ]
             ];
           unlock (i lock_base +% v "b");
           ret (v "r")
         ])
  in
  let p_del =
    proc "sht_del" ~params:[ ("key", I) ] ~ret:I
      ([ let_i "b" (hash (v "key"));
         lock (i lock_base +% v "b")
       ]
       @ handoff_stmts
       @ [ let_i "bp" (g "sht_ht" +% (v "b" <<% i bshift));
           for_ "j" (i 0) (i cfg.slots)
             [ when_ (fld_i (slot "bp" "j") 0 ==% (v "key" +% i 1))
                 [ set_fld_i (slot "bp" "j") 0 (i 0) ]
             ];
           sti (g "sht_vtab") (v "key") (i 0);
           unlock (i lock_base +% v "b");
           ret (i 0)
         ])
  in
  let p_scan =
    proc "sht_scan" ~params:[ ("key", I) ] ~ret:I
      [ let_i "b0" (hash (v "key"));
        when_ (v "b0" >% i (cfg.nbuckets - wl.Workload.scan_len))
          [ set "b0" (i (cfg.nbuckets - wl.Workload.scan_len)) ];
        (* multi-bucket transaction: ascending acquisition order *)
        for_ "t" (i 0) (i wl.Workload.scan_len)
          [ lock ((i lock_base +% v "b0") +% v "t") ];
        let_i "viol" (i 0);
        let_i "ssum" (i 0);
        for_ "t" (i 0) (i wl.Workload.scan_len)
          [ let_i "bp"
              (g "sht_ht" +% ((v "b0" +% v "t") <<% i bshift));
            for_ "j" (i 0) (i cfg.slots)
              [ let_i "tg" (fld_i (slot "bp" "j") 0);
                when_ (v "tg" <>% i 0)
                  [ let_i "k2" (v "tg" -% i 1);
                    let_i "vv" (fld_i (slot "bp" "j") 8);
                    set "ssum" (v "ssum" +% v "vv");
                    when_
                      (v "vv"
                       <>% ((ldi (g "sht_vtab") (v "k2") *% i nkeys)
                            +% v "k2"))
                      [ set "viol" (v "viol" +% i 1) ]
                  ]
              ]
          ];
        for_ "t" (i 0) (i wl.Workload.scan_len)
          [ unlock ((i lock_base +% v "b0") +% v "t") ];
        ret (v "viol" +% (v "ssum" *% i 0))
      ]
  in
  let t_init =
    [ gset "sht_ht" (Gmalloc_b (i (cfg.nbuckets * bucket_bytes), i bucket_bytes));
      gset "sht_dir" (Gmalloc_b (i (cfg.nbuckets * 16), i 64));
      gset "sht_vtab" (Gmalloc (i (nkeys * 8)));
      gset "sht_stats" (Gmalloc_b (Nprocs *% i 256, i 256));
      (* node-partitioned to start: bucket b served by node b mod P *)
      for_ "b" (i 0) (i cfg.nbuckets)
        [ sti (g "sht_dir") (v "b" *% i 2) (v "b" %% Nprocs);
          sti (g "sht_dir") ((v "b" *% i 2) +% i 1) (i 0)
        ]
    ]
  in
  let t_finish =
    [ let_i "tov" (i 0);
      for_ "p" (i 0) Nprocs
        [ set "tov"
            (v "tov" +% fld_i (g "sht_stats" +% (v "p" <<% i 8)) 0)
        ];
      print_int (v "tov");
      let_i "tmg" (i 0);
      for_ "p" (i 0) Nprocs
        [ set "tmg"
            (v "tmg" +% fld_i (g "sht_stats" +% (v "p" <<% i 8)) 8)
        ];
      print_int (v "tmg");
      (* final sweep: every key's last write must still be visible.
         Keys loaded by a node whose program died mid-plan (bit set in
         the runtime-maintained [__crashed] mask) are counted as lost
         instead of verified: their bytes survive in the DSM (crash
         recovery salvages block data), but they reflect whatever
         prefix of the victim's plan ran, which no oracle can predict
         without the crash cycle. *)
      let_i "dead" (g "__crashed");
      let_i "verr" (i 0);
      let_i "pop" (i 0);
      let_i "cs" (i 0);
      let_i "lost" (i 0);
      for_ "k" (i 0) (i nkeys)
        [ if_ ((v "dead" >>% (v "k" %% Nprocs)) &% i 1)
            [ set "lost" (v "lost" +% i 1) ]
            [ let_i "r" (call "sht_get" [ v "k" ]);
              when_ (v "r" <% i 0) [ set "verr" (v "verr" +% i 1) ];
              when_ (v "r" >% i 0)
                [ set "pop" (v "pop" +% i 1);
                  set "cs" ((v "cs" *% i 31) +% v "r")
                ]
            ]
        ];
      print_int (v "verr");
      print_int (v "pop");
      print_int (v "cs");
      print_int (v "lost");
      for_ "p" (i 0) Nprocs
        [ let_i "cnt" (i 0);
          for_ "b" (i 0) (i cfg.nbuckets)
            [ when_ (ldi (g "sht_dir") (v "b" *% i 2) ==% v "p")
                [ set "cnt" (v "cnt" +% i 1) ]
            ];
          print_int (v "cnt")
        ]
    ]
  in
  { Workload.t_globals =
      (* [__crashed] last, so the other globals keep their addresses
         relative to a build without it *)
      [ ("sht_ht", I); ("sht_dir", I); ("sht_vtab", I); ("sht_stats", I);
        ("__crashed", I) ];
    t_procs = [ p_get; p_put; p_del; p_scan ];
    t_init;
    t_get = (fun key -> call "sht_get" [ key ]);
    t_put = (fun key -> call "sht_put" [ key ]);
    t_del = (fun key -> call "sht_del" [ key ]);
    t_scan = (fun key -> call "sht_scan" [ key ]);
    t_finish
  }

let program ?cfg ~wl () =
  let cfg =
    match cfg with
    | Some c -> c
    | None -> default_cfg ~nkeys:wl.Workload.nkeys
  in
  Workload.program wl (table cfg ~wl)

(* ------------------------------------------------------------------ *)
(* Oracle: replay the plan against a shadow table (disjoint mode)      *)
(* ------------------------------------------------------------------ *)

type shadow = {
  s_population : int;
  s_checksum : int;
  s_lost : int;
  s_versions : int array;
}

(* Valid when [wl.disjoint] is set and no insert can overflow
   (check [max_bucket_load cfg <= cfg.slots]): then each key's
   operation sequence is node-local and the final table state is
   independent of the cross-node interleaving.

   [dead] are nodes whose programs crashed mid-plan: their keys are
   excluded from the predicted population/checksum exactly as the
   crash-aware final sweep excludes them (the victim executed only an
   unknowable prefix of its plan, so its keys verify as "lost", not as
   any particular version).  In disjoint mode a node's operations touch
   only its own key partition, so every other key's outcome is
   unaffected by the crash. *)
let shadow ?(dead = []) ~(wl : Workload.spec) ~nprocs () =
  if not wl.Workload.disjoint then
    invalid_arg "Sht.shadow: spec must be disjoint";
  if wl.Workload.nkeys mod nprocs <> 0 then
    invalid_arg "Sht.shadow: nkeys must be a multiple of nprocs";
  let nkeys = wl.Workload.nkeys in
  let ver = Array.make nkeys 1 (* load phase inserts every key once *) in
  let plans = Workload.plan wl ~nprocs in
  Array.iter
    (Array.iter (function
      | Workload.Get _ | Workload.Scan _ -> ()
      | Workload.Put k -> ver.(k) <- ver.(k) + 1
      | Workload.Del k -> ver.(k) <- 0))
    plans;
  let pop = ref 0 and cs = ref 0 and lost = ref 0 in
  for k = 0 to nkeys - 1 do
    if List.mem (k mod nprocs) dead then incr lost
    else if ver.(k) > 0 then begin
      incr pop;
      cs := (!cs * 31) + ((ver.(k) * nkeys) + k + 1)
    end
  done;
  { s_population = !pop; s_checksum = !cs; s_lost = !lost;
    s_versions = ver }
