(* Direct-mapped cache models.

   The dynamic overheads of Table 2 include hardware cache misses caused
   by the check code itself — in particular state-table misses on store
   checks (Section 3.3 motivates the exclusive table by the 8x density
   difference) and extra I-cache pressure from the inserted code.  A
   simple direct-mapped tag model reproduces those effects.  Writeback
   traffic is not costed (dirty evictions are counted but charged the
   same as clean fills); this second-order effect does not change any of
   the shapes the paper reports. *)

type t = {
  cname : string;
  line_bytes : int;
  nsets : int;
  tags : int array; (* -1 = empty *)
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~size_bytes ~line_bytes =
  if size_bytes mod line_bytes <> 0 then invalid_arg "Cache.create";
  let nsets = size_bytes / line_bytes in
  { cname = name; line_bytes; nsets; tags = Array.make nsets (-1);
    hits = 0; misses = 0 }

let reset t =
  Array.fill t.tags 0 t.nsets (-1);
  t.hits <- 0;
  t.misses <- 0

(* Probe and fill.  Returns true on hit. *)
let access t addr =
  let block = addr / t.line_bytes in
  let set = block mod t.nsets in
  if t.tags.(set) = block then begin
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    t.tags.(set) <- block;
    false
  end

(* Invalidate every line of the cache that overlaps [addr, addr+len).
   Used when protocol handlers rewrite memory behind the processor's
   back (data replies, flag writes): the next program access must pay
   the miss the real machine would pay. *)
let invalidate_range t ~addr ~len =
  let first = addr / t.line_bytes and last = (addr + len - 1) / t.line_bytes in
  for block = first to last do
    let set = block mod t.nsets in
    if t.tags.(set) = block then t.tags.(set) <- -1
  done

type hierarchy = {
  l1i : t;
  l1d : t;
  l2 : t;
  l1_miss_cycles : int; (* L1 miss, L2 hit *)
  l2_miss_cycles : int; (* L2 miss, memory fill *)
  (* observability tap: called with the missing cache on every miss;
     wired to the metrics registry by the cluster, no-op by default *)
  mutable on_miss : t -> unit;
}

(* Cache geometry of the evaluation platform: 16 KB on-chip I and D
   caches, 4 MB off-chip second-level cache (Section 5.2). *)
let alpha_hierarchy () =
  { l1i = create ~name:"l1i" ~size_bytes:(16 * 1024) ~line_bytes:32;
    l1d = create ~name:"l1d" ~size_bytes:(16 * 1024) ~line_bytes:32;
    l2 = create ~name:"l2" ~size_bytes:(4 * 1024 * 1024) ~line_bytes:64;
    l1_miss_cycles = 10;
    l2_miss_cycles = 50;
    on_miss = ignore }

let reset_hierarchy h =
  reset h.l1i;
  reset h.l1d;
  reset h.l2

(* Extra cycles for a data access. *)
let daccess h addr =
  if access h.l1d addr then 0
  else begin
    h.on_miss h.l1d;
    if access h.l2 addr then h.l1_miss_cycles
    else begin
      h.on_miss h.l2;
      h.l1_miss_cycles + h.l2_miss_cycles
    end
  end

(* Extra cycles for an instruction fetch. *)
let iaccess h addr =
  if access h.l1i addr then 0
  else begin
    h.on_miss h.l1i;
    if access h.l2 addr then h.l1_miss_cycles
    else begin
      h.on_miss h.l2;
      h.l1_miss_cycles + h.l2_miss_cycles
    end
  end

let dinvalidate h ~addr ~len =
  invalidate_range h.l1d ~addr ~len;
  invalidate_range h.l2 ~addr ~len
