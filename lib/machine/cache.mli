(** Direct-mapped cache models.

    Table 2's dynamic overheads include the hardware cache misses the
    check code itself causes — state-table misses on store checks are
    the paper's motivation for the exclusive table (Section 3.3) — so
    check metadata accesses go through the same model as data. *)

type t = {
  cname : string;
  line_bytes : int;
  nsets : int;
  tags : int array;
  mutable hits : int;
  mutable misses : int;
}

val create : name:string -> size_bytes:int -> line_bytes:int -> t
val reset : t -> unit

val access : t -> int -> bool
(** Probe and fill; [true] on hit. *)

val invalidate_range : t -> addr:int -> len:int -> unit
(** Drop any lines overlapping the range; used when protocol handlers
    rewrite memory behind the processor's back. *)

type hierarchy = {
  l1i : t;
  l1d : t;
  l2 : t;
  l1_miss_cycles : int;
  l2_miss_cycles : int;
  mutable on_miss : t -> unit;
      (** observability tap, fired with the missing cache on every
          miss; no-op by default *)
}

val alpha_hierarchy : unit -> hierarchy
(** The evaluation platform's geometry: 16 KB I/D L1, 4 MB L2
    (paper Section 5.2). *)

val reset_hierarchy : hierarchy -> unit

val daccess : hierarchy -> int -> int
(** Extra cycles for a data access (0 on an L1 hit). *)

val iaccess : hierarchy -> int -> int
(** Extra cycles for an instruction fetch. *)

val dinvalidate : hierarchy -> addr:int -> len:int -> unit
